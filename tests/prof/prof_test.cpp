// Tests for the legate::prof timeline recorder, the Chrome-trace exporter
// and the utilization / traffic / critical-path analyses, including an
// end-to-end CG run through the real runtime stack.
#include "prof/prof.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/workloads.h"
#include "prof/analysis.h"
#include "prof/trace.h"
#include "rt/runtime.h"
#include "solve/krylov.h"
#include "sparse/csr.h"

namespace legate::prof {
namespace {

// --- Minimal JSON parser (validation + structural access) ------------------
//
// Enough of RFC 8259 to load what chrome_trace_json emits; throws
// std::runtime_error on any syntax violation, which is the point: the
// golden-file test fails if the exporter ever produces invalid JSON.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind{Kind::Null};
  bool boolean{false};
  double number{0};
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", JsonValue{JsonValue::Kind::Bool, true});
      case 'f': return literal("false", JsonValue{JsonValue::Kind::Bool, false});
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue literal(const std::string& word, JsonValue v) {
    if (s_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
    return v;
  }

  JsonValue number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("bad escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit");
          }
          // The exporter only escapes control characters; keep ASCII simple.
          v.str += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.str] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse(); }

// --- Recorder unit tests ---------------------------------------------------

TEST(RecorderTest, DisabledRecorderStoresNothingThroughEngine) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(2, pp);
  sim::Engine e(m);
  e.busy_proc(0, 0.0, 1.0, "t");
  e.copy(m.proc(0).mem, m.proc(1).mem, 1e6, 0.0);
  e.allreduce_bytes(2, 1e3, 0.0, true);
  EXPECT_FALSE(e.recorder().enabled());
  EXPECT_TRUE(e.recorder().events().empty());
  EXPECT_TRUE(e.recorder().tracks().empty());
  EXPECT_TRUE(e.recorder().traffic().empty());
}

TEST(RecorderTest, TrackInterningIsStable) {
  Recorder r;
  r.enable();
  int a = r.track("GPU0", 0);
  int b = r.track("GPU1", 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(r.track("GPU0", 0), a);
  EXPECT_EQ(r.tracks()[static_cast<std::size_t>(b)].node, 1);
}

TEST(RecorderTest, PredResolvesProducerByCompletionTime) {
  Recorder r;
  r.enable();
  int p0 = r.track("p0", 0);
  int p1 = r.track("p1", 0);
  std::uint64_t a = r.record(Category::Kernel, p0, 0.0, 1.0, -1.0, "a");
  // b starts exactly when a completes and was gated by it (ready == 1.0).
  std::uint64_t b = r.record(Category::Copy, p1, 1.0, 1.5, 1.0, "b");
  // c queues behind b on the same track with no data gate: track pred.
  std::uint64_t c = r.record(Category::Kernel, p1, 1.5, 2.0, -1.0, "c");
  EXPECT_EQ(r.events()[b].pred, static_cast<std::int64_t>(a));
  EXPECT_EQ(r.events()[c].pred, static_cast<std::int64_t>(b));
}

TEST(RecorderTest, ResetDropsEventsBusyAndTraffic) {
  Recorder r;
  r.enable();
  int t = r.track("p", 0);
  r.record(Category::Kernel, t, 0.0, 1.0, -1.0, "a");
  r.add_busy(t, 1.0);
  r.add_traffic(0, 1, 100.0);
  r.reset();
  EXPECT_TRUE(r.enabled());
  EXPECT_TRUE(r.events().empty());
  EXPECT_TRUE(r.tracks().empty());
  EXPECT_TRUE(r.traffic().empty());
}

TEST(RecorderTest, FlushSinkRunsBeforeResetDropsEvents) {
  Recorder r;
  r.enable();
  int flushed_events = -1;
  int calls = 0;
  r.set_flush_sink([&](const Recorder& rec) {
    ++calls;
    flushed_events = static_cast<int>(rec.events().size());
  });
  int t = r.track("p", 0);
  r.record(Category::Kernel, t, 0.0, 1.0, -1.0, "a");
  r.record(Category::Copy, t, 1.0, 2.0, -1.0, "b");
  r.reset();
  // The sink saw the events intact; the reset still dropped them after.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(flushed_events, 2);
  EXPECT_TRUE(r.events().empty());
  // An empty window flushes nothing (no spurious empty trace exports).
  r.reset();
  EXPECT_EQ(calls, 1);
}

TEST(RecorderTest, FlushSinkIgnoredWhileDisabled) {
  Recorder r;  // never enabled: reset must not invoke the sink
  int calls = 0;
  r.set_flush_sink([&](const Recorder&) { ++calls; });
  r.reset();
  EXPECT_EQ(calls, 0);
}

// --- Analysis unit tests ---------------------------------------------------

TEST(AnalysisTest, UtilizationSkipsIdleTracks) {
  Recorder r;
  r.enable();
  int a = r.track("gpu0", 0);
  r.track("gpu1", 0);  // never busy
  r.add_busy(a, 2.0);
  auto rows = utilization(r, 4.0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].track, "gpu0");
  EXPECT_DOUBLE_EQ(rows[0].fraction, 0.5);
}

TEST(AnalysisTest, TrafficMatrixAccumulatesPerNodePair) {
  Recorder r;
  r.enable();
  r.add_traffic(0, 1, 5.0);
  r.add_traffic(0, 1, 7.0);
  r.add_traffic(1, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.traffic().at({0, 1}), 12.0);
  EXPECT_DOUBLE_EQ(r.traffic().at({1, 0}), 1.0);
}

TEST(AnalysisTest, CriticalPathFollowsReadyChain) {
  Recorder r;
  r.enable();
  int p0 = r.track("p0", 0);
  int p1 = r.track("p1", 0);
  std::uint64_t a = r.record(Category::Kernel, p0, 0.0, 1.0, -1.0, "a");
  std::uint64_t b = r.record(Category::Copy, p1, 1.0, 1.5, 1.0, "b");
  std::uint64_t c = r.record(Category::Kernel, p0, 1.5, 3.0, 1.5, "c");
  // A short event elsewhere must not divert the chain.
  r.record(Category::Kernel, p1, 1.5, 1.6, -1.0, "short");
  CriticalPath cp = critical_path(r);
  EXPECT_DOUBLE_EQ(cp.total_seconds, 3.0);
  ASSERT_EQ(cp.chain.size(), 3u);
  EXPECT_EQ(cp.chain[0], a);
  EXPECT_EQ(cp.chain[1], b);
  EXPECT_EQ(cp.chain[2], c);
  EXPECT_DOUBLE_EQ(cp.by_category.at("kernel"), 2.5);
  EXPECT_DOUBLE_EQ(cp.by_category.at("copy"), 0.5);
  EXPECT_DOUBLE_EQ(cp.wait_seconds, 0.0);
}

TEST(AnalysisTest, CriticalPathAttributesGapsAsWait) {
  Recorder r;
  r.enable();
  int p0 = r.track("p0", 0);
  std::uint64_t a = r.record(Category::Kernel, p0, 0.0, 1.0, -1.0, "a");
  // Gated by a (ready == 1.0) but started 0.5 s later: fan-in wait.
  std::uint64_t b = r.record(Category::Kernel, p0, 1.5, 2.0, 1.0, "b");
  (void)a;
  (void)b;
  CriticalPath cp = critical_path(r);
  EXPECT_DOUBLE_EQ(cp.total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(cp.wait_seconds, 0.5);
  EXPECT_DOUBLE_EQ(cp.by_category.at("kernel"), 1.5);
}

// --- Chrome-trace exporter -------------------------------------------------

TEST(TraceTest, EscapesSpecialCharactersInNames) {
  Recorder r;
  r.enable();
  int t = r.track("tr\"ack\\one", 0);
  r.record(Category::Kernel, t, 0.0, 1.0, -1.0, "na\"me\\with\nnewline");
  JsonValue doc = parse_json(chrome_trace_json(r));
  bool found = false;
  for (const auto& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").str == "X" && ev.at("name").str == "na\"me\\with\nnewline")
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, EscapesControlCharactersInNames) {
  // Regression: \b, \f and raw control bytes (0x01, 0x1f) in labels must
  // produce valid JSON — parse_json throws on any raw control character or
  // malformed escape, so a round-trip is the whole assertion.
  const std::string nasty = std::string("a\bb\fc\x01d\x1f") + "e\tf\rg";
  Recorder r;
  r.enable();
  int t = r.track(nasty, 0);
  r.record(Category::Kernel, t, 0.0, 1.0, -1.0, nasty);
  JsonValue doc = parse_json(chrome_trace_json(r));
  bool found = false;
  for (const auto& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").str == "X" && ev.at("name").str == nasty) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, MetricsSnapshotEmitsInstantMarker) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(1, pp);
  sim::Engine e(m);
  e.recorder().enable();
  e.note_snapshot();
  JsonValue doc = parse_json(chrome_trace_json(e.recorder()));
  bool found = false;
  for (const auto& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").str == "i" && ev.at("name").str == "metrics-snapshot")
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, InstantMarkersUseInstantPhase) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(1, pp);
  sim::Engine e(m);
  e.recorder().enable();
  e.note_fault();
  e.note_retry();
  JsonValue doc = parse_json(chrome_trace_json(e.recorder()));
  int instants = 0;
  for (const auto& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").str == "i") ++instants;
  }
  EXPECT_EQ(instants, 2);
}

TEST(TraceTest, EventsEmitInMonotonicTimestampOrderPerProcess) {
  // Regression (lsr_diag satellite): events appended out of timestamp order
  // — the exec pool's worker threads interleave arbitrarily — must still be
  // emitted with monotonic ts within each process so dumps and streaming
  // trace consumers see an ordered timeline.
  Recorder r;
  r.enable();
  int t0 = r.track("gpu0", 0);
  int t1 = r.track("gpu1", 0);
  r.record(Category::Kernel, t0, 2.0, 3.0, -1.0, "late");
  r.record(Category::Kernel, t1, 0.0, 1.0, -1.0, "early");
  r.record(Category::Kernel, t0, 0.5, 1.5, -1.0, "middle");
  r.set_last_wall(0.25, 0.75);
  JsonValue doc = parse_json(chrome_trace_json(r));
  double last_sim = -1.0, last_wall = -1.0;
  int sim_events = 0;
  for (const auto& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").str != "X") continue;
    const double ts = ev.at("ts").number;
    if (ev.at("pid").number == 999) {
      EXPECT_GE(ts, last_wall);
      last_wall = ts;
    } else {
      EXPECT_GE(ts, last_sim) << "sim timeline out of order at " << ts;
      last_sim = ts;
      ++sim_events;
    }
  }
  EXPECT_EQ(sim_events, 3);
}

// --- End-to-end: a small CG solve through the real stack -------------------

struct CgRun {
  std::unique_ptr<rt::Runtime> runtime;
  solve::SolveResult result;
};

CgRun run_small_cg(bool profile) {
  sim::PerfParams pp;
  sim::Machine machine = sim::Machine::gpus(12, pp);  // 2 nodes
  auto runtime = std::make_unique<rt::Runtime>(machine);
  if (profile) runtime->engine().recorder().enable();
  apps::HostProblem prob = apps::poisson2d(48);
  auto A = sparse::CsrMatrix::from_host(*runtime, prob.rows, prob.cols,
                                        prob.indptr, prob.indices, prob.values);
  auto b = dense::DArray::full(*runtime, prob.rows, 1.0);
  CgRun run;
  run.result = solve::cg(A, b, /*tol=*/0.0, /*maxiter=*/8);
  run.runtime = std::move(runtime);
  return run;
}

TEST(ProfEndToEndTest, RecordingDoesNotPerturbSimulation) {
  CgRun off = run_small_cg(false);
  CgRun on = run_small_cg(true);
  // Bit-identical times and counters: profiling only observes.
  EXPECT_DOUBLE_EQ(off.runtime->sim_time(), on.runtime->sim_time());
  const auto& so = off.runtime->engine().stats();
  const auto& sn = on.runtime->engine().stats();
  EXPECT_EQ(so.tasks, sn.tasks);
  EXPECT_EQ(so.copies, sn.copies);
  EXPECT_EQ(so.allreduces, sn.allreduces);
  EXPECT_DOUBLE_EQ(so.bytes_ib, sn.bytes_ib);
  EXPECT_DOUBLE_EQ(so.bytes_nvlink, sn.bytes_nvlink);
  EXPECT_DOUBLE_EQ(so.bytes_intra, sn.bytes_intra);
  EXPECT_DOUBLE_EQ(off.result.residual, on.result.residual);
  EXPECT_TRUE(off.runtime->engine().recorder().events().empty());
  EXPECT_FALSE(on.runtime->engine().recorder().events().empty());
}

TEST(ProfEndToEndTest, ChromeTraceIsValidJsonWithOneEventPerOperation) {
  CgRun run = run_small_cg(true);
  const auto& rec = run.runtime->engine().recorder();
  const auto& stats = run.runtime->engine().stats();

  JsonValue doc = parse_json(chrome_trace_json(rec));
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  const auto& evs = doc.at("traceEvents").array;

  long kernels = 0, copies = 0, allreduces = 0, launches = 0, metadata = 0;
  for (const auto& ev : evs) {
    const std::string& ph = ev.at("ph").str;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_TRUE(ph == "X" || ph == "i");
    const std::string& cat = ev.at("cat").str;
    if (cat == "kernel") ++kernels;
    else if (cat == "copy") ++copies;
    else if (cat == "allreduce") ++allreduces;
    else if (cat == "launch-overhead") ++launches;
    // Every complete event carries non-negative duration and a name.
    if (ph == "X") {
      EXPECT_GE(ev.at("dur").number, 0.0);
      EXPECT_FALSE(ev.at("name").str.empty());
    }
  }
  // One timeline event per simulated operation. Kernel events cover point
  // tasks plus fault retries (none here).
  EXPECT_EQ(kernels, stats.tasks + stats.retries);
  EXPECT_EQ(copies, stats.copies);
  EXPECT_EQ(allreduces, stats.allreduces);
  EXPECT_GT(launches, 0);
  EXPECT_GT(metadata, 0);
}

TEST(ProfEndToEndTest, TaskLabelsCarryProvenance) {
  CgRun run = run_small_cg(true);
  bool saw_cg_scope = false;
  for (const auto& ev : run.runtime->engine().recorder().events()) {
    if (ev.cat == Category::Kernel &&
        ev.name.find("@cg") != std::string::npos)
      saw_cg_scope = true;
  }
  EXPECT_TRUE(saw_cg_scope);
}

TEST(ProfEndToEndTest, SummaryReportsAllSections) {
  CgRun run = run_small_cg(true);
  std::string s = summary(run.runtime->engine().recorder(),
                          run.runtime->engine().makespan());
  EXPECT_NE(s.find("utilization"), std::string::npos);
  EXPECT_NE(s.find("traffic matrix"), std::string::npos);
  EXPECT_NE(s.find("critical path"), std::string::npos);
  EXPECT_NE(s.find("kernel"), std::string::npos);
}

TEST(ProfEndToEndTest, TrafficMatrixSeesInterNodeBytes) {
  CgRun run = run_small_cg(true);
  const auto& traffic = run.runtime->engine().recorder().traffic();
  // 2-node machine: the CG allreduces cross the node boundary both ways.
  ASSERT_TRUE(traffic.count({0, 1}));
  ASSERT_TRUE(traffic.count({1, 0}));
  EXPECT_GT(traffic.at({0, 1}), 0.0);
  EXPECT_GT(traffic.at({1, 0}), 0.0);
}

}  // namespace
}  // namespace legate::prof
