// legate::metrics registry: handle semantics, sharded-merge exactness under
// concurrent increments (the tier-1 tsan target), snapshot/delta algebra,
// and both exporters' formats.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.h"
#include "rt/runtime.h"
#include "sim/machine.h"

namespace legate::metrics {
namespace {

TEST(Registry, CounterAccumulatesAndSnapshots) {
  Registry reg;
  Counter c = reg.counter("requests_total", "requests served");
  c.inc();
  c.inc(2.5);
  Snapshot snap = reg.snapshot();
  const Snapshot::Metric* m = snap.find("requests_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, Kind::Counter);
  EXPECT_EQ(m->stability, Stability::Stable);
  EXPECT_DOUBLE_EQ(m->value, 3.5);
  EXPECT_EQ(m->help, "requests served");
}

TEST(Registry, RegistrationIsIdempotentByName) {
  Registry reg;
  Counter a = reg.counter("dup_total", "first");
  Counter b = reg.counter("dup_total", "first");
  a.inc();
  b.inc();
  EXPECT_DOUBLE_EQ(reg.snapshot().find("dup_total")->value, 2.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, GaugeSetAndMonotoneMax) {
  Registry reg;
  Gauge g = reg.gauge("depth", "queue depth", Stability::Volatile);
  g.set(7);
  g.set(3);
  EXPECT_DOUBLE_EQ(reg.snapshot().find("depth")->value, 3.0);
  g.update_max(2);  // below current: keeps 3
  EXPECT_DOUBLE_EQ(reg.snapshot().find("depth")->value, 3.0);
  g.update_max(11);
  EXPECT_DOUBLE_EQ(reg.snapshot().find("depth")->value, 11.0);
}

TEST(Registry, HistogramBucketsSumAndOverflow) {
  Registry reg;
  Histogram h = reg.histogram("size_bytes", "sizes", {10.0, 100.0, 1000.0});
  h.observe(5);      // <= 10
  h.observe(10);     // <= 10 (bounds are inclusive upper bounds)
  h.observe(50);     // <= 100
  h.observe(5000);   // overflow (+Inf)
  Snapshot snap = reg.snapshot();
  const Snapshot::Metric* m = snap.find("size_bytes");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_DOUBLE_EQ(m->buckets[0], 2.0);
  EXPECT_DOUBLE_EQ(m->buckets[1], 1.0);
  EXPECT_DOUBLE_EQ(m->buckets[2], 0.0);
  EXPECT_DOUBLE_EQ(m->buckets[3], 1.0);
  EXPECT_DOUBLE_EQ(m->count, 4.0);
  EXPECT_DOUBLE_EQ(m->sum, 5065.0);
}

TEST(Registry, InertHandlesAreNoOps) {
  // Pool instances constructed without a registry hold default handles;
  // instrumented code must not need null checks.
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(1);
  g.update_max(2);
  h.observe(3);  // no crash is the assertion
}

TEST(Registry, ResetZeroesValuesKeepsMetricSet) {
  Registry reg;
  Counter c = reg.counter("n_total", "n");
  Histogram h = reg.histogram("v", "v", {1.0});
  c.inc(5);
  h.observe(0.5);
  reg.reset();
  Snapshot snap = reg.snapshot();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.find("n_total")->value, 0.0);
  EXPECT_DOUBLE_EQ(snap.find("v")->count, 0.0);
  c.inc();  // handles stay valid across reset
  EXPECT_DOUBLE_EQ(reg.snapshot().find("n_total")->value, 1.0);
}

// The tier-1 tsan target: many threads hammering the same counter and
// histogram must be race-free and, because every increment is +1 (exactly
// representable), the shard merge must sum exactly.
TEST(Registry, ConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter c = reg.counter("hits_total", "hits", Stability::Volatile);
  Histogram h =
      reg.histogram("obs", "observations", {1.0, 2.0}, Stability::Volatile);
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.5);
      }
    });
  }
  for (auto& w : workers) w.join();
  Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("hits_total")->value, 1.0 * kThreads * kIters);
  EXPECT_DOUBLE_EQ(snap.find("obs")->count, 1.0 * kThreads * kIters);
  EXPECT_DOUBLE_EQ(snap.find("obs")->buckets[1], 1.0 * kThreads * kIters);
}

TEST(Snapshot, DeltaSubtractsCountersKeepsGauges) {
  Registry reg;
  Counter c = reg.counter("work_total", "work");
  Gauge g = reg.gauge("level", "level");
  Histogram h = reg.histogram("t", "t", {1.0});
  c.inc(10);
  g.set(4);
  h.observe(0.5);
  Snapshot base = reg.snapshot();
  c.inc(7);
  g.set(9);
  h.observe(2.0);
  Snapshot d = reg.snapshot().delta(base);
  EXPECT_DOUBLE_EQ(d.find("work_total")->value, 7.0);
  EXPECT_DOUBLE_EQ(d.find("level")->value, 9.0);  // gauges: current value
  EXPECT_DOUBLE_EQ(d.find("t")->count, 1.0);
  EXPECT_DOUBLE_EQ(d.find("t")->buckets[0], 0.0);  // 2.0 went to overflow
  EXPECT_DOUBLE_EQ(d.find("t")->buckets[1], 1.0);
}

TEST(Snapshot, StableOnlyJsonExcludesVolatile) {
  Registry reg;
  reg.counter("stable_total", "s").inc();
  reg.counter("volatile_total", "v", Stability::Volatile).inc();
  std::string all = reg.snapshot().to_json();
  std::string stable = reg.snapshot().to_json(/*stable_only=*/true);
  EXPECT_NE(all.find("volatile_total"), std::string::npos);
  EXPECT_NE(stable.find("stable_total"), std::string::npos);
  EXPECT_EQ(stable.find("volatile_total"), std::string::npos);
}

TEST(Snapshot, JsonPrintsIntegralValuesWithoutExponent) {
  Registry reg;
  reg.counter("big_total", "b").inc(1e6);
  std::string js = reg.snapshot().to_json();
  EXPECT_NE(js.find("\"value\":1000000"), std::string::npos) << js;
}

TEST(Snapshot, PrometheusExposesHelpTypeAndCumulativeBuckets) {
  Registry reg;
  reg.counter("reqs_total", "requests").inc(3);
  Histogram h = reg.histogram("lat_seconds", "latency", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(10.0);
  std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# HELP reqs_total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  // Buckets are cumulative in the exposition format.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3"), std::string::npos);
}

TEST(Util, SanitizeName) {
  EXPECT_EQ(sanitize_name("cg"), "cg");
  EXPECT_EQ(sanitize_name("Fig9/CG solve"), "Fig9_CG_solve");
  EXPECT_EQ(sanitize_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_name(""), "_");
}

TEST(Util, AppendJsonStringEscapes) {
  std::string out;
  append_json_string(out, "a\"b\\c\nd\x01" "e");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
}

TEST(Registry, SnapshotDeltaAndJsonEmitSortedKeyOrder) {
  // Emission order must not leak registration order (which varies with
  // runtime configuration): snapshot, delta, and the JSON exporter all list
  // metrics sorted by name, so diffs of exported files are stable.
  Registry reg;
  Counter z = reg.counter("zz_last_total", "registered first");
  Gauge m = reg.gauge("mm_middle", "registered second");
  Counter a = reg.counter("aa_first_total", "registered last");
  z.inc();
  m.set(2);
  a.inc(3);
  Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "aa_first_total");
  EXPECT_EQ(snap.metrics[1].name, "mm_middle");
  EXPECT_EQ(snap.metrics[2].name, "zz_last_total");

  z.inc(4);
  Snapshot d = reg.snapshot().delta(snap);
  ASSERT_EQ(d.metrics.size(), 3u);
  EXPECT_EQ(d.metrics[0].name, "aa_first_total");
  EXPECT_EQ(d.metrics[2].name, "zz_last_total");
  EXPECT_DOUBLE_EQ(d.metrics[2].value, 4.0);

  std::string json = snap.to_json();
  auto pa = json.find("aa_first_total");
  auto pm = json.find("mm_middle");
  auto pz = json.find("zz_last_total");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pm, std::string::npos);
  ASSERT_NE(pz, std::string::npos);
  EXPECT_LT(pa, pm);
  EXPECT_LT(pm, pz);
}

// End-to-end: a runtime fence makes the stable counters visible via
// Runtime::metrics_snapshot(), and the registry is per-engine (two runtimes
// never share values).
TEST(RuntimeMetrics, SnapshotAfterWorkAndPerEngineIsolation) {
  sim::PerfParams pp;
  rt::RuntimeOptions opts;
  opts.exec_threads = 2;
  rt::Runtime rt_a(sim::Machine::gpus(2, pp), opts);
  rt::Runtime rt_b(sim::Machine::gpus(2, pp), opts);

  rt::Store st = rt_a.create_store(rt::DType::F64, {1000});
  for (int i = 0; i < 3; ++i) {
    rt::TaskLauncher launch(rt_a, "fill");
    int out = launch.add_output(st);
    launch.set_leaf([out](rt::TaskContext& ctx) {
      auto y = ctx.full<double>(out);
      Interval iv = ctx.elem_interval(out);
      for (coord_t j = iv.lo; j < iv.hi; ++j) y[j] = 1.0;
      ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
    });
    launch.execute();
  }
  Snapshot snap_a = rt_a.metrics_snapshot();
  Snapshot snap_b = rt_b.metrics_snapshot();
  const Snapshot::Metric* launches = snap_a.find("lsr_rt_launches_total");
  ASSERT_NE(launches, nullptr);
  // With fusion on, the three back-to-back fills collapse into one fused
  // launch; applied + eliminated always accounts for every original launch.
  const Snapshot::Metric* elim = snap_a.find("lsr_fuse_launches_eliminated_total");
  ASSERT_NE(elim, nullptr);
  EXPECT_DOUBLE_EQ(launches->value + elim->value, 3.0);
  EXPECT_DOUBLE_EQ(snap_b.find("lsr_rt_launches_total")->value, 0.0);
}

TEST(RuntimeMetrics, DiagMetricsRegisteredWithDocumentedStability) {
  // The lsr_diag_* family (DESIGN.md section 14): replay-path event counts
  // and trip/dump counters are Stable (deterministic at any thread count),
  // per-thread event counts and the ring high-water mark are Volatile.
  sim::PerfParams pp;
  rt::RuntimeOptions opts;
  opts.diag = diag::Mode::On;
  opts.diag_opts.watchdog = false;
  rt::Runtime rt(sim::Machine::gpus(2, pp), opts);

  rt::Store st = rt.create_store(rt::DType::F64, {100});
  rt::TaskLauncher launch(rt, "fill");
  int out = launch.add_output(st);
  launch.set_leaf([out](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t j = iv.lo; j < iv.hi; ++j) y[j] = 1.0;
    ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
  });
  launch.execute();
  rt.fence();

  Snapshot snap = rt.metrics_snapshot();
  const struct {
    const char* name;
    Stability st;
  } expected[] = {
      {"lsr_diag_events_recorded_total", Stability::Stable},
      {"lsr_diag_events_dropped_total", Stability::Stable},
      {"lsr_diag_watchdog_trips_total", Stability::Stable},
      {"lsr_diag_dumps_written_total", Stability::Stable},
      {"lsr_diag_thread_events_total", Stability::Volatile},
      {"lsr_diag_thread_events_dropped_total", Stability::Volatile},
      {"lsr_diag_ring_high_water", Stability::Volatile},
  };
  for (const auto& e : expected) {
    const Snapshot::Metric* m = snap.find(e.name);
    ASSERT_NE(m, nullptr) << e.name;
    EXPECT_EQ(m->stability, e.st) << e.name;
  }
  EXPECT_GT(snap.find("lsr_diag_events_recorded_total")->value, 0.0);
  EXPECT_DOUBLE_EQ(snap.find("lsr_diag_watchdog_trips_total")->value, 0.0);
  EXPECT_GT(snap.find("lsr_diag_ring_high_water")->value, 0.0);
}

}  // namespace
}  // namespace legate::metrics
