// Determinism across executor thread counts: solutions, simulated
// makespans, and engine stats must be *bit-identical* for exec_threads in
// {1, 4, 8}. Reduction partials fold in fixed color order and the simulated
// replay is independent of real execution interleaving, so any divergence
// here is a scheduling leak into results or accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <tuple>
#include <vector>

#include "apps/workloads.h"
#include "comm/comm.h"
#include "solve/krylov.h"
#include "solve/lanczos.h"
#include "solve/multigrid.h"
#include "sparse/formats.h"

namespace legate {
namespace {

using dense::DArray;
using sparse::CsrMatrix;

struct RunSignature {
  std::vector<double> solution;
  int iterations{0};
  double makespan{0};
  long tasks{0};
  long copies{0};
  long allreduces{0};
  double bytes_nvlink{0};
  double bytes_ib{0};
  double bytes_intra{0};

  bool operator==(const RunSignature& o) const {
    if (solution.size() != o.solution.size()) return false;
    // memcmp: bit-identical, not approximately equal.
    if (!solution.empty() &&
        std::memcmp(solution.data(), o.solution.data(),
                    solution.size() * sizeof(double)) != 0)
      return false;
    return iterations == o.iterations && makespan == o.makespan &&
           tasks == o.tasks && copies == o.copies && allreduces == o.allreduces &&
           bytes_nvlink == o.bytes_nvlink && bytes_ib == o.bytes_ib &&
           bytes_intra == o.bytes_intra;
  }
};

rt::RuntimeOptions threaded(int threads) {
  rt::RuntimeOptions opts;
  opts.exec_threads = threads;
  opts.exec_pipeline = 1;
  return opts;
}

RunSignature finish(rt::Runtime& rt, std::vector<double> solution, int iterations) {
  RunSignature sig;
  sig.solution = std::move(solution);
  sig.iterations = iterations;
  sig.makespan = rt.sim_time();
  const auto& st = rt.engine().stats();
  sig.tasks = st.tasks;
  sig.copies = st.copies;
  sig.allreduces = st.allreduces;
  sig.bytes_nvlink = st.bytes_nvlink;
  sig.bytes_ib = st.bytes_ib;
  sig.bytes_intra = st.bytes_intra;
  return sig;
}

CsrMatrix poisson2d(rt::Runtime& rt, coord_t g) {
  CsrMatrix t = sparse::diags(rt, g, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  CsrMatrix i = sparse::eye(rt, g);
  return sparse::kron(i, t).add(sparse::kron(t, i));
}

template <typename Scenario>
void expect_thread_invariant(Scenario&& run) {
  RunSignature base = run(1);
  ASSERT_FALSE(base.solution.empty());
  for (int threads : {4, 8}) {
    RunSignature other = run(threads);
    EXPECT_EQ(base, other) << "diverged at exec_threads=" << threads;
  }
}

TEST(Determinism, CgBitIdenticalAcrossThreadCounts) {
  expect_thread_invariant([](int threads) {
    sim::PerfParams pp;
    rt::Runtime rt(sim::Machine::gpus(4, pp), threaded(threads));
    CsrMatrix A = poisson2d(rt, 20);
    auto b = DArray::full(rt, A.rows(), 1.0);
    auto res = solve::cg(A, b, 1e-10, 500);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  });
}

TEST(Determinism, GmresBitIdenticalAcrossThreadCounts) {
  expect_thread_invariant([](int threads) {
    sim::PerfParams pp;
    rt::Runtime rt(sim::Machine::gpus(3, pp), threaded(threads));
    auto prob = apps::banded_matrix(600, 2);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto b = DArray::random(rt, A.rows(), 5);
    auto res = solve::gmres(A, b, 30, 1e-10, 400);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  });
}

TEST(Determinism, LanczosBitIdenticalAcrossThreadCounts) {
  expect_thread_invariant([](int threads) {
    sim::PerfParams pp;
    rt::Runtime rt(sim::Machine::gpus(4, pp), threaded(threads));
    CsrMatrix A = poisson2d(rt, 16);
    auto res = solve::lanczos(A, 4, 60, 1);
    return finish(rt, res.eigenvalues, res.iterations);
  });
}

TEST(Determinism, GmgPreconditionedCgBitIdenticalAcrossThreadCounts) {
  expect_thread_invariant([](int threads) {
    sim::PerfParams pp;
    rt::Runtime rt(sim::Machine::gpus(3, pp), threaded(threads));
    constexpr coord_t g = 16;
    CsrMatrix A = poisson2d(rt, g);
    CsrMatrix R = solve::TwoLevelGmg::injection_2d(rt, g);
    solve::TwoLevelGmg gmg(A, R);
    auto b = DArray::full(rt, A.rows(), 1.0);
    auto res = solve::cg(A, b, 1e-9, 300, gmg.preconditioner());
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  });
}

TEST(Determinism, StableMetricsSnapshotBitIdenticalAcrossThreadCounts) {
  // The metrics determinism contract: the stable-only snapshot JSON (the
  // exact exported string, not just values) must be byte-identical for
  // exec_threads in {1, 4, 8}. Stable metrics are incremented only on the
  // sequential replay path, so any divergence is a worker thread writing a
  // metric that was tagged Stable.
  auto run = [](int threads) {
    sim::PerfParams pp;
    rt::Runtime rt(sim::Machine::gpus(4, pp), threaded(threads));
    CsrMatrix A = poisson2d(rt, 20);
    auto b = DArray::full(rt, A.rows(), 1.0);
    auto res = solve::cg(A, b, 1e-10, 500);
    EXPECT_TRUE(res.converged);
    return rt.metrics_snapshot().to_json(/*stable_only=*/true);
  };
  std::string base = run(1);
  // Sanity: every instrumented layer shows up in the stable set...
  EXPECT_NE(base.find("lsr_rt_launches_total"), std::string::npos);
  EXPECT_NE(base.find("lsr_sim_tasks_total"), std::string::npos);
  EXPECT_NE(base.find("lsr_solve_cg_iterations_total"), std::string::npos);
  // ...and the scheduling-dependent executor metrics are excluded from it.
  EXPECT_EQ(base.find("lsr_exec_"), std::string::npos);
  for (int threads : {4, 8}) {
    EXPECT_EQ(base, run(threads))
        << "stable metrics diverged at exec_threads=" << threads;
  }
}

TEST(Determinism, SolversBitIdenticalAcrossPartitionStrategies) {
  // The nnz-balanced row split regroups per-point work but never cuts a row
  // and never re-orders reduction folding, so cg and gmres must produce the
  // same solution bits as the equal split — at every thread count. Makespan
  // and copy stats legitimately differ between strategies (that is the
  // point of rebalancing), so only within-strategy signatures are compared
  // whole; across strategies the solutions must match bitwise.
  auto cg_run = [](rt::PartitionStrategy s, int threads) {
    sim::PerfParams pp;
    rt::RuntimeOptions opts = threaded(threads);
    opts.partition = s;
    rt::Runtime rt(sim::Machine::gpus(4, pp), opts);
    CsrMatrix A = poisson2d(rt, 18);
    auto b = DArray::full(rt, A.rows(), 1.0);
    auto res = solve::cg(A, b, 1e-10, 500);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  };
  auto gmres_run = [](rt::PartitionStrategy s, int threads) {
    sim::PerfParams pp;
    rt::RuntimeOptions opts = threaded(threads);
    opts.partition = s;
    rt::Runtime rt(sim::Machine::gpus(3, pp), opts);
    auto prob = apps::banded_matrix(500, 2);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto b = DArray::random(rt, A.rows(), 5);
    auto res = solve::gmres(A, b, 30, 1e-10, 400);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  };
  using Runner = std::function<RunSignature(rt::PartitionStrategy, int)>;
  for (const Runner& run : {Runner(cg_run), Runner(gmres_run)}) {
    RunSignature rows1 = run(rt::PartitionStrategy::Rows, 1);
    RunSignature nnz1 = run(rt::PartitionStrategy::Nnz, 1);
    ASSERT_FALSE(rows1.solution.empty());
    EXPECT_EQ(rows1.iterations, nnz1.iterations);
    ASSERT_EQ(rows1.solution.size(), nnz1.solution.size());
    EXPECT_EQ(std::memcmp(rows1.solution.data(), nnz1.solution.data(),
                          rows1.solution.size() * sizeof(double)),
              0)
        << "solution bits diverged between rows and nnz strategies";
    for (int threads : {4, 8}) {
      EXPECT_EQ(rows1, run(rt::PartitionStrategy::Rows, threads))
          << "rows strategy diverged at exec_threads=" << threads;
      EXPECT_EQ(nnz1, run(rt::PartitionStrategy::Nnz, threads))
          << "nnz strategy diverged at exec_threads=" << threads;
    }
  }
}

TEST(Determinism, SolversBitIdenticalAcrossFusionModes) {
  // Fusion is a pure launch-stream rewrite: cg and gmres must produce the
  // same solution bits with fusion off and on, under both partition
  // strategies, at every thread count. Makespan and launch stats
  // legitimately change (that is the point of fusing), so only solutions
  // are compared across modes; within one (fusion, partition) cell the full
  // signature must stay thread-invariant.
  auto cg_run = [](rt::Fusion f, rt::PartitionStrategy s, int threads) {
    sim::PerfParams pp;
    rt::RuntimeOptions opts = threaded(threads);
    opts.fusion = f;
    opts.partition = s;
    rt::Runtime rt(sim::Machine::gpus(4, pp), opts);
    CsrMatrix A = poisson2d(rt, 18);
    auto b = DArray::full(rt, A.rows(), 1.0);
    auto res = solve::cg(A, b, 1e-10, 500);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  };
  auto gmres_run = [](rt::Fusion f, rt::PartitionStrategy s, int threads) {
    sim::PerfParams pp;
    rt::RuntimeOptions opts = threaded(threads);
    opts.fusion = f;
    opts.partition = s;
    rt::Runtime rt(sim::Machine::gpus(3, pp), opts);
    auto prob = apps::banded_matrix(500, 2);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto b = DArray::random(rt, A.rows(), 5);
    auto res = solve::gmres(A, b, 30, 1e-10, 400);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  };
  using Runner =
      std::function<RunSignature(rt::Fusion, rt::PartitionStrategy, int)>;
  for (const Runner& run : {Runner(cg_run), Runner(gmres_run)}) {
    RunSignature ref = run(rt::Fusion::Off, rt::PartitionStrategy::Rows, 1);
    ASSERT_FALSE(ref.solution.empty());
    for (rt::Fusion f : {rt::Fusion::Off, rt::Fusion::On}) {
      for (rt::PartitionStrategy s :
           {rt::PartitionStrategy::Rows, rt::PartitionStrategy::Nnz}) {
        RunSignature cell1 = run(f, s, 1);
        EXPECT_EQ(cell1.iterations, ref.iterations);
        ASSERT_EQ(cell1.solution.size(), ref.solution.size());
        EXPECT_EQ(std::memcmp(cell1.solution.data(), ref.solution.data(),
                              ref.solution.size() * sizeof(double)),
                  0)
            << "solution bits diverged (fusion=" << rt::fusion_mode_name(f)
            << ", strategy=" << static_cast<int>(s) << ")";
        for (int threads : {4, 8}) {
          EXPECT_EQ(cell1, run(f, s, threads))
              << "(fusion=" << rt::fusion_mode_name(f)
              << ", strategy=" << static_cast<int>(s)
              << ") diverged at exec_threads=" << threads;
        }
      }
    }
  }
}

TEST(Determinism, SolversBitIdenticalAcrossCommModes) {
  // The communication planner replays cached exchange plans and coalesces
  // the staleness copies into per-link messages; overlap additionally splits
  // kernels around in-flight ghosts. All of that is simulated-time shaping:
  // solution bits must not move across off|plan|overlap, and within one mode
  // the full signature (solution, makespan, engine stats) must stay
  // thread-invariant. Copy counts and per-link bytes legitimately differ
  // *between* modes — coalescing is the point — so cross-mode comparison is
  // solutions only.
  auto cg_run = [](comm::Mode m, int threads) {
    sim::PerfParams pp;
    rt::RuntimeOptions opts = threaded(threads);
    opts.comm = m;
    rt::Runtime rt(sim::Machine::gpus(4, pp), opts);
    CsrMatrix A = poisson2d(rt, 18);
    auto b = DArray::full(rt, A.rows(), 1.0);
    auto res = solve::cg(A, b, 1e-10, 500);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  };
  auto gmres_run = [](comm::Mode m, int threads) {
    sim::PerfParams pp;
    rt::RuntimeOptions opts = threaded(threads);
    opts.comm = m;
    rt::Runtime rt(sim::Machine::gpus(3, pp), opts);
    auto prob = apps::banded_matrix(500, 2);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto b = DArray::random(rt, A.rows(), 5);
    auto res = solve::gmres(A, b, 30, 1e-10, 400);
    EXPECT_TRUE(res.converged);
    return finish(rt, res.x.to_vector(), res.iterations);
  };
  using Runner = std::function<RunSignature(comm::Mode, int)>;
  for (const Runner& run : {Runner(cg_run), Runner(gmres_run)}) {
    RunSignature ref = run(comm::Mode::Off, 1);
    ASSERT_FALSE(ref.solution.empty());
    for (comm::Mode m :
         {comm::Mode::Off, comm::Mode::Plan, comm::Mode::Overlap}) {
      RunSignature cell1 = run(m, 1);
      EXPECT_EQ(cell1.iterations, ref.iterations);
      ASSERT_EQ(cell1.solution.size(), ref.solution.size());
      EXPECT_EQ(std::memcmp(cell1.solution.data(), ref.solution.data(),
                            ref.solution.size() * sizeof(double)),
                0)
          << "solution bits diverged (comm=" << comm::comm_mode_name(m) << ")";
      for (int threads : {4, 8}) {
        EXPECT_EQ(cell1, run(m, threads))
            << "(comm=" << comm::comm_mode_name(m)
            << ") diverged at exec_threads=" << threads;
      }
    }
  }
}

TEST(Determinism, SequentialAndThreadedSpmvChainsMatch) {
  // Mixed sparse/dense iteration stream (the Fig. 5 steady-state loop) with
  // all stats compared, exercising image partitions and halo copies under
  // deferred execution.
  expect_thread_invariant([](int threads) {
    sim::PerfParams pp;
    rt::Runtime rt(sim::Machine::gpus(2, pp), threaded(threads));
    auto prob = apps::banded_matrix(4000, 1);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto x = DArray::random(rt, prob.rows, 3);
    for (int it = 0; it < 6; ++it) {
      x = A.spmv(x);
      x.iscale(0.25);
    }
    return finish(rt, x.to_vector(), 6);
  });
}

}  // namespace
}  // namespace legate
