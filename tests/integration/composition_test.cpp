// Integration tests for the paper's central claims:
//  * Legate Sparse and the dense library compose through shared partitions
//    with no coupling between their implementations (Section 4.1),
//  * steady-state loops touch only halo data (Section 4.2 / Fig. 5),
//  * results are independent of machine shape and identical across the
//    runtime and the explicitly-parallel baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/workloads.h"
#include "baselines/petsc/petsc.h"
#include "baselines/ref/ref.h"
#include "solve/krylov.h"
#include "sparse/formats.h"

namespace legate {
namespace {

using dense::DArray;
using sparse::CsrMatrix;

TEST(Composition, SparseAndDenseShareKeyPartitions) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(4, pp);
  rt::Runtime rt(m);
  auto prob = apps::banded_matrix(4000, 2);
  auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                prob.indices, prob.values);
  auto x = DArray::random(rt, prob.rows, 1);

  // Warm up one round: the sparse op writes y with some partition; the
  // dense ops must adopt it, and vice versa on the next spmv.
  auto y = A.spmv(x);
  y.iscale(0.5);
  long parts = rt.partitions_created();
  for (int i = 0; i < 5; ++i) {
    y = A.spmv(y);   // sparse library launch
    y.iscale(0.5);   // dense library launch, reuses y's key partition
    auto n = y.norm();
    y.iscale({1.0 / n.value, n.ready});
  }
  // No new partitions after the first round: full cross-library reuse.
  EXPECT_EQ(rt.partitions_created(), parts);
}

TEST(Composition, SteadyStateChainsCopyOnlyHalos) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(3, pp);
  rt::Runtime rt(m);
  auto prob = apps::banded_matrix(9000, 1);
  auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                prob.indices, prob.values);
  // This asserts the equal-split steady state; an nnz-balanced split of the
  // tridiagonal shifts the cuts by one row (the edge rows are lighter) and
  // legitimately adds a copied element per cut, so pin the strategy.
  A.set_partition_strategy(rt::PartitionStrategy::Rows);
  auto x = DArray::random(rt, prob.rows, 2);
  for (int i = 0; i < 4; ++i) {
    x = A.spmv(x);
    x.iscale(0.25);
  }
  const auto& st = rt.engine().stats();
  double before = st.bytes_nvlink + st.bytes_ib + st.bytes_intra;
  for (int i = 0; i < 3; ++i) {
    x = A.spmv(x);
    x.iscale(0.25);
  }
  rt.fence();  // stats observation point: drain deferred launches
  double per_iter = (st.bytes_nvlink + st.bytes_ib + st.bytes_intra - before) / 3;
  // Tridiagonal halo: one element in each direction at each of 2 cuts.
  EXPECT_DOUBLE_EQ(per_iter, 4 * 8.0);
}

TEST(Composition, ResultsIndependentOfMachineShape) {
  sim::PerfParams pp;
  auto run = [&](sim::Machine machine) {
    rt::Runtime rt(machine);
    auto prob = apps::poisson2d(24);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto b = DArray::full(rt, prob.rows, 1.0);
    return solve::cg(A, b, 1e-10, 2000).x.to_vector();
  };
  // Reduction partials combine in color order, so results across machine
  // shapes agree to rounding (bit-exactness holds only per shape).
  auto gold = run(sim::Machine::gpus(1, pp));
  for (auto& other : {run(sim::Machine::gpus(7, pp)),
                      run(sim::Machine::sockets(5, pp)),
                      run(sim::Machine::gpus(16, pp, 4))}) {
    ASSERT_EQ(other.size(), gold.size());
    for (std::size_t i = 0; i < gold.size(); ++i)
      EXPECT_NEAR(other[i], gold[i], 1e-7);
  }
}

TEST(Composition, ThreeSystemsAgreeOnCg) {
  sim::PerfParams pp;
  auto prob = apps::poisson2d(16);
  std::vector<double> rhs(static_cast<std::size_t>(prob.rows), 1.0);

  // Legate runtime.
  sim::Machine m = sim::Machine::gpus(3, pp);
  rt::Runtime rt(m);
  auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                prob.indices, prob.values);
  auto res_legate =
      solve::cg(A, DArray::from_vector(rt, rhs), 1e-11, 2000).x.to_vector();

  // PETSc baseline.
  baselines::mpisim::MpiSim sim(sim::ProcKind::GPU, 3, pp);
  baselines::petsc::Mat Ap(sim, prob.rows, prob.cols, prob.indptr, prob.indices,
                           prob.values);
  baselines::petsc::Vec bp(sim, rhs);
  auto res_petsc = baselines::petsc::ksp_cg(Ap, bp, 1e-11, 2000).x.gather();

  // Sequential reference.
  baselines::ref::RefContext ctx(baselines::ref::Device::ScipyCpu, pp);
  baselines::ref::RefCsr Ar(ctx, prob.rows, prob.cols, prob.indptr, prob.indices,
                            prob.values);
  baselines::ref::RefVector br(ctx, rhs);
  baselines::ref::RefVector xr(ctx, prob.rows, 0.0);
  baselines::ref::RefVector r = br, p = r;
  double rr = r.dot(r);
  for (int it = 0; it < 2000 && std::sqrt(rr) > 1e-11 * std::sqrt(br.dot(br));
       ++it) {
    auto Apv = Ar.spmv(p);
    double alpha = rr / p.dot(Apv);
    xr.axpy(alpha, p);
    r.axpy(-alpha, Apv);
    double rr2 = r.dot(r);
    p.xpay(rr2 / rr, r);
    rr = rr2;
  }

  for (std::size_t i = 0; i < res_legate.size(); ++i) {
    EXPECT_NEAR(res_legate[i], res_petsc[i], 1e-7);
    EXPECT_NEAR(res_legate[i], xr.data()[i], 1e-7);
  }
}

TEST(Composition, Fig1ProgramMatchesSequentialPowerIteration) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(5, pp);
  rt::Runtime rt(m);
  constexpr coord_t n = 128;
  auto R = sparse::random_csr(rt, n, n, 0.05, 11);
  auto A = R.add(R.transpose()).scale(0.5).add(sparse::eye(rt, n).scale(double(n)));
  auto res = solve::power_iteration(A, 60, 3);

  // Sequential oracle on the same matrix.
  std::vector<coord_t> ap, ai;
  std::vector<double> av;
  A.to_host(ap, ai, av);
  std::vector<double> x(static_cast<std::size_t>(n));
  {
    // Same deterministic starting vector as DArray::random(seed=3).
    auto x0 = dense::DArray::random(rt, n, 3).to_vector();
    x = x0;
  }
  for (int it = 0; it < 60; ++it) {
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    for (coord_t i = 0; i < n; ++i)
      for (coord_t j = ap[static_cast<std::size_t>(i)];
           j < ap[static_cast<std::size_t>(i) + 1]; ++j)
        y[static_cast<std::size_t>(i)] +=
            av[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(ai[static_cast<std::size_t>(j)])];
    double nrm = 0;
    for (double v : y) nrm += v * v;
    nrm = std::sqrt(nrm);
    for (std::size_t i = 0; i < y.size(); ++i) x[i] = y[i] / nrm;
  }
  std::vector<double> Ax(static_cast<std::size_t>(n), 0.0);
  for (coord_t i = 0; i < n; ++i)
    for (coord_t j = ap[static_cast<std::size_t>(i)];
         j < ap[static_cast<std::size_t>(i) + 1]; ++j)
      Ax[static_cast<std::size_t>(i)] +=
          av[static_cast<std::size_t>(j)] *
          x[static_cast<std::size_t>(ai[static_cast<std::size_t>(j)])];
  double lambda = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) lambda += x[i] * Ax[i];

  EXPECT_NEAR(res.eigenvalue, lambda, 1e-9);
}

TEST(Composition, MakespanAtLeastCriticalPathAndBusyTime) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(4, pp);
  // The bound below prices each iadd as its own kernel + control-lane slot;
  // fusion would legitimately collapse the chain under it, so pin it off.
  rt::RuntimeOptions opts;
  opts.fusion = rt::Fusion::Off;
  rt::Runtime rt(m, opts);
  auto a = DArray::full(rt, 1 << 18, 1.0);
  auto b = DArray::full(rt, 1 << 18, 2.0);
  double t0 = rt.sim_time();
  for (int i = 0; i < 20; ++i) a.iadd(b);  // dependent chain
  double elapsed = rt.sim_time() - t0;
  // Critical path: 20 dependent kernels; each moves 3*N/4 doubles per GPU.
  double kernel = (3.0 * (1 << 18) / 4 * 8.0) / pp.gpu_mem_bw + pp.gpu_kernel_launch;
  EXPECT_GE(elapsed, 20 * kernel * 0.99);
  // And it cannot be less than the control lane consumed.
  EXPECT_GE(elapsed, 20 * pp.legate_task_overhead * 0.99);
}

TEST(Composition, SimulatedTimeIsMonotone) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(2, pp);
  rt::Runtime rt(m);
  auto a = DArray::full(rt, 1024, 1.0);
  double last = rt.sim_time();
  for (int i = 0; i < 10; ++i) {
    a.iscale(1.01);
    double now = rt.sim_time();
    EXPECT_GE(now, last);
    last = now;
  }
}

/// Weak-scaling property: banded SpMV per-iteration time stays within 25%
/// across the whole GPU sweep (the Fig. 8 flatness, asserted as a test).
class SpmvWeakScaling : public ::testing::TestWithParam<int> {};

TEST_P(SpmvWeakScaling, FlatWithinTolerance) {
  sim::PerfParams pp;
  int procs = GetParam();
  auto per_iter = [&](int p) {
    sim::Machine m = sim::Machine::gpus(p, pp);
    // The warm-up heuristic below issues no-op launches and expects each to
    // advance the control lane individually; fusion would batch them.
    rt::RuntimeOptions opts;
    opts.fusion = rt::Fusion::Off;
    rt::Runtime rt(m, opts);
    auto prob = apps::banded_matrix(20000 * p, 5);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto x = DArray::full(rt, prob.rows, 1.0);
    auto warm = A.spmv(x);
    // Let the control lane catch up with the startup copy wave so the
    // measurement sees the steady state rather than launch-latency hiding:
    // keep issuing no-op launches until each one advances the makespan by
    // its own control overhead.
    for (int batch = 0; batch < 100; ++batch) {
      double s0 = rt.sim_time();
      for (int i = 0; i < 20; ++i) x.iscale(1.0);
      if (rt.sim_time() - s0 > 19 * pp.legate_task_overhead) break;
    }
    double t0 = rt.sim_time();
    for (int i = 0; i < 3; ++i) auto y = A.spmv(x);
    return (rt.sim_time() - t0) / 3;
  };
  double t1 = per_iter(1);
  double tp = per_iter(procs);
  EXPECT_LT(tp, t1 * 1.25);
  EXPECT_GT(tp, t1 * 0.75);
}

INSTANTIATE_TEST_SUITE_P(Procs, SpmvWeakScaling, ::testing::Values(2, 6, 12, 48));

TEST(Composition, DependenceOrderUnderMixedLibraries) {
  // Interleave sparse and dense writes/reads on shared data and replay the
  // same program on host; any missed dependence shows as a wrong value.
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(3, pp);
  rt::Runtime rt(m);
  constexpr coord_t n = 500;
  auto A = sparse::diags(rt, n, {{-2, 0.5}, {0, 1.0}, {3, -0.25}});
  auto x = DArray::arange(rt, n);
  auto acc = DArray::zeros(rt, n);
  for (int round = 0; round < 6; ++round) {
    auto y = A.spmv(x);       // sparse reads x
    acc.iadd(y);              // dense accumulates
    x.axpy(0.125, y);         // dense writes x (WAR against the spmv read)
    x.iscale(0.5);            // dense in-place
  }
  // Host replay.
  std::vector<coord_t> ap, ai;
  std::vector<double> av;
  A.to_host(ap, ai, av);
  std::vector<double> xs(static_cast<std::size_t>(n)), as(static_cast<std::size_t>(n), 0.0);
  for (coord_t i = 0; i < n; ++i) xs[static_cast<std::size_t>(i)] = static_cast<double>(i);
  for (int round = 0; round < 6; ++round) {
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    for (coord_t i = 0; i < n; ++i)
      for (coord_t j = ap[static_cast<std::size_t>(i)];
           j < ap[static_cast<std::size_t>(i) + 1]; ++j)
        y[static_cast<std::size_t>(i)] +=
            av[static_cast<std::size_t>(j)] *
            xs[static_cast<std::size_t>(ai[static_cast<std::size_t>(j)])];
    for (coord_t i = 0; i < n; ++i) {
      as[static_cast<std::size_t>(i)] += y[static_cast<std::size_t>(i)];
      xs[static_cast<std::size_t>(i)] =
          (xs[static_cast<std::size_t>(i)] + 0.125 * y[static_cast<std::size_t>(i)]) * 0.5;
    }
  }
  auto xg = x.to_vector();
  auto ag = acc.to_vector();
  for (coord_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xg[static_cast<std::size_t>(i)], xs[static_cast<std::size_t>(i)], 1e-9);
    EXPECT_NEAR(ag[static_cast<std::size_t>(i)], as[static_cast<std::size_t>(i)], 1e-9);
  }
}

}  // namespace
}  // namespace legate
