#!/usr/bin/env python3
"""Compare a bench --metrics snapshot against a committed baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--sim-threshold 0.02]
                     [--rtol 1e-9]

The files are the BENCH_*.json schema written by `bench_<x> --metrics out.json`:

    {"schema": 1, "bench": "bench_cg", "points": {
        "<point>": {"sim_s_per_iter": S, "snapshot": {"metrics": [...]}}}}

Checks, in order of severity:
  * every baseline point must exist in the current run (a vanished point is
    a silently-dropped benchmark, which is a failure, not a skip);
  * `sim_s_per_iter` may not regress (grow) by more than --sim-threshold
    relative to the baseline (default 2%; the simulator is deterministic, so
    any growth is a real modeled-cost change, not noise);
  * every stable metric in the baseline must exist in the current snapshot
    and match within --rtol (default 1e-9, i.e. exactly up to printing):
    counters and gauges by value, histograms by per-bucket counts, sum and
    count. Stable metrics are bit-identical across exec-thread counts by
    construction, so a mismatch means the runtime now does different work.
    A baseline metric that never fired (counter/gauge value 0, histogram
    count 0) and is absent from the current run is only a note: the
    registry's metric set evolves, and a zero-valued entry carries no
    behavioural signal whose loss could hide a regression.

Improvements (faster sim_s_per_iter, new points, new metrics) never fail;
they are reported so the baseline can be refreshed deliberately.

Points may carry an informational "wall" object (measured wall
seconds/iteration, thread count, speedup). Wall clocks are machine-specific,
so it is never compared — it exists so committed baselines document
real-execution effects (e.g. the partition sweep's rows-vs-nnz wall gap)
next to the gated deterministic sim numbers.

Exit status: 0 all green, 1 regression(s), 2 bad invocation / unreadable
or mis-shaped input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != 1 or "points" not in doc:
        sys.exit(f"error: {path}: not a schema-1 bench metrics file")
    return doc


def index_metrics(snapshot):
    """name -> metric dict, for the snapshot's metrics array."""
    return {m["name"]: m for m in snapshot.get("metrics", [])}


def rel_diff(cur, base):
    if cur == base:
        return 0.0
    denom = max(abs(cur), abs(base), 1.0)
    return abs(cur - base) / denom


def is_zero_valued(m):
    """True when the metric never fired: nothing observable is lost if a
    later build stops registering it."""
    if m.get("kind") == "histogram":
        return m.get("count", 0.0) == 0 and m.get("sum", 0.0) == 0
    return m.get("value", 0.0) == 0


def compare_metric(point, base_m, cur_m, rtol, failures, notes):
    name = base_m["name"]

    def check(field, base_v, cur_v):
        if rel_diff(cur_v, base_v) > rtol:
            failures.append(
                f"{point}: metric {name} {field} changed "
                f"{base_v!r} -> {cur_v!r}"
            )

    if cur_m is None:
        if is_zero_valued(base_m):
            notes.append(
                f"{point}: zero-valued baseline metric {name} absent from "
                "current run — consider refreshing the baseline"
            )
        else:
            failures.append(f"{point}: metric {name} missing from current run")
        return
    if cur_m.get("kind") != base_m.get("kind"):
        failures.append(
            f"{point}: metric {name} kind changed "
            f"{base_m.get('kind')} -> {cur_m.get('kind')}"
        )
        return
    if base_m.get("kind") == "histogram":
        if base_m.get("bounds") != cur_m.get("bounds"):
            failures.append(f"{point}: metric {name} bucket bounds changed")
            return
        base_b = base_m.get("buckets", [])
        cur_b = cur_m.get("buckets", [])
        if len(base_b) != len(cur_b):
            failures.append(f"{point}: metric {name} bucket count changed")
        else:
            for i, (b, c) in enumerate(zip(base_b, cur_b)):
                check(f"bucket[{i}]", b, c)
        check("sum", base_m.get("sum", 0.0), cur_m.get("sum", 0.0))
        check("count", base_m.get("count", 0.0), cur_m.get("count", 0.0))
    else:
        check("value", base_m.get("value", 0.0), cur_m.get("value", 0.0))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--sim-threshold",
        type=float,
        default=0.02,
        help="max allowed relative growth of sim_s_per_iter (default 0.02)",
    )
    ap.add_argument(
        "--rtol",
        type=float,
        default=1e-9,
        help="relative tolerance for stable metric values (default 1e-9)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base.get("bench") != cur.get("bench"):
        sys.exit(
            f"error: comparing different benches: "
            f"{base.get('bench')} vs {cur.get('bench')}"
        )

    failures = []
    notes = []

    for point, bp in sorted(base["points"].items()):
        cp = cur["points"].get(point)
        if cp is None:
            failures.append(f"{point}: missing from current run")
            continue

        b_sim = bp.get("sim_s_per_iter", 0.0)
        c_sim = cp.get("sim_s_per_iter", 0.0)
        if b_sim > 0:
            growth = (c_sim - b_sim) / b_sim
            if growth > args.sim_threshold:
                failures.append(
                    f"{point}: sim_s_per_iter regressed "
                    f"{b_sim:.6g} -> {c_sim:.6g} (+{growth * 100:.2f}%, "
                    f"threshold {args.sim_threshold * 100:.1f}%)"
                )
            elif growth < -args.sim_threshold:
                notes.append(
                    f"{point}: sim_s_per_iter improved "
                    f"{b_sim:.6g} -> {c_sim:.6g} ({growth * 100:.2f}%) — "
                    "consider refreshing the baseline"
                )

        cur_by_name = index_metrics(cp.get("snapshot", {}))
        for bm in bp.get("snapshot", {}).get("metrics", []):
            compare_metric(
                point, bm, cur_by_name.get(bm["name"]), args.rtol, failures, notes
            )
        extra = set(cur_by_name) - {
            m["name"] for m in bp.get("snapshot", {}).get("metrics", [])
        }
        if extra:
            notes.append(
                f"{point}: {len(extra)} new metric(s) not in baseline "
                f"(e.g. {sorted(extra)[0]})"
            )

    new_points = sorted(set(cur["points"]) - set(base["points"]))
    if new_points:
        notes.append(
            f"{len(new_points)} new point(s) not in baseline "
            f"(e.g. {new_points[0]}) — consider refreshing the baseline"
        )

    for n in notes:
        print(f"note: {n}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(
            f"bench_compare: {len(failures)} regression(s) vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    npoints = len(base["points"])
    print(f"bench_compare: OK ({npoints} point(s) vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
