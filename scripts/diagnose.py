#!/usr/bin/env python3
"""Summarize an lsr_diag post-mortem dump (lsr_dump_*.json).

Usage:
    diagnose.py DUMP.json [--last N] [--expect-suspect SUBSTR]

Prints a human-readable post-mortem: the dump header (reason, mode, clocks),
the suspect block (in-flight launch, lost node, poisoned store), the progress
board, exec-pool occupancy, the last N events per ring, and notable metrics.

Exit codes:
    0   dump parsed and summarized (and --expect-suspect matched, if given)
    1   --expect-suspect was given and nothing in the suspect block matched
    2   the file is missing, unreadable, or not a schema-1 lsr_diag dump
"""

import argparse
import json
import sys


def fail(msg: str) -> "sys.NoReturn":
    print(f"diagnose.py: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_dump(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            d = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if not isinstance(d, dict) or d.get("tool") != "lsr_diag":
        fail(f"{path} is not an lsr_diag dump (missing tool tag)")
    if d.get("schema") != 1:
        fail(f"{path} has unsupported schema {d.get('schema')!r} (expected 1)")
    return d


def fmt_time(ev: dict) -> str:
    sim = ev.get("sim", -1)
    if sim is not None and sim >= 0:
        return f"sim={sim:.6g}s"
    return f"wall={ev.get('wall', 0):.6g}s"


def print_events(dump: dict, last_n: int) -> None:
    events = dump.get("events", [])
    rings = dump.get("rings", [])
    by_ring: dict = {name: [] for name in rings}
    for ev in events:
        ring = ev.get("ring", "?")
        if isinstance(ring, int) and 0 <= ring < len(rings):
            ring = rings[ring]  # events reference rings by index
        by_ring.setdefault(str(ring), []).append(ev)
    print(f"events ({len(events)} drained, last {last_n} per ring):")
    for name in sorted(by_ring):
        evs = by_ring[name]
        print(f"  ring {name}: {len(evs)} events")
        for ev in evs[-last_n:]:
            label = ev.get("label", "")
            kind = ev.get("kind", "?")
            extra = ""
            a, b, v = ev.get("a", 0), ev.get("b", 0), ev.get("v", 0)
            if a or b:
                extra += f" a={a} b={b}"
            if v:
                extra += f" v={v:.6g}"
            print(f"    #{ev.get('seq', '?'):>6} {fmt_time(ev):>18} "
                  f"{kind:<12} {label}{extra}")


def print_metrics(dump: dict) -> None:
    snap = dump.get("metrics")
    if not snap:
        return
    interesting = [m for m in snap.get("metrics", [])
                   if m.get("name", "").startswith(("lsr_diag_", "lsr_fault_",
                                                    "lsr_integrity_",
                                                    "lsr_launches", "lsr_fences"))]
    if not interesting:
        return
    print("metrics highlights:")
    for m in interesting:
        val = m.get("value", m.get("count", ""))
        print(f"  {m.get('name')}: {val}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("dump", help="lsr_dump_*.json file to summarize")
    ap.add_argument("--last", type=int, default=10, metavar="N",
                    help="events shown per ring (default 10)")
    ap.add_argument("--expect-suspect", default=None, metavar="SUBSTR",
                    help="exit 1 unless the suspect block mentions SUBSTR")
    args = ap.parse_args()

    dump = load_dump(args.dump)
    suspect = dump.get("suspect", {})
    board = dump.get("board", {})
    pool = dump.get("pool", {})
    counters = dump.get("counters", {})

    print(f"lsr_diag dump: {args.dump}")
    print(f"  reason: {dump.get('reason', '?')}   mode: {dump.get('mode', '?')}")
    clocks = f"  wall: {dump.get('wall_seconds', 0):.6g}s"
    if "sim_seconds" in dump:
        clocks += f"   sim: {dump['sim_seconds']:.6g}s"
    print(clocks)

    print("suspect:")
    launch = suspect.get("launch", "")
    state = "in flight" if suspect.get("active") else "last retired"
    print(f"  launch: {launch or '<none>'} ({state}, "
          f"{suspect.get('pending', 0)} deferred)")
    if suspect.get("node_lost"):
        print(f"  node: {suspect.get('node')} (LOST to fault injection)")
    else:
        print(f"  node: {suspect.get('node', 0)}")
    if "store" in suspect:
        print(f"  store: {suspect['store']} (poisoned)")

    print("board:")
    print(f"  launches replayed: {board.get('launches', 0)}   "
          f"pending: {board.get('pending', 0)}   "
          f"open fusion window: {board.get('open_window', 0)}")
    print(f"  partition: {board.get('partition', '?')}   "
          f"poisoned stores: {board.get('poisoned_stores', 0)}")

    if pool.get("valid"):
        print(f"pool: queued={pool.get('queued', 0)} "
              f"running={pool.get('running', 0)} "
              f"completed={pool.get('completed', 0)}")
        if pool.get("queued", 0) > 0 and pool.get("running", 0) == 0:
            print("  !! ready work queued with no worker running "
                  "(deadlock signature)")
    else:
        print("pool: not attached (sequential run)")

    print(f"counters: events={counters.get('events_total', 0)} "
          f"watchdog_trips={counters.get('watchdog_trips', 0)} "
          f"dumps={counters.get('dumps_written', 0)}")

    print_events(dump, max(1, args.last))
    print_metrics(dump)

    if args.expect_suspect is not None:
        hay = json.dumps(suspect)
        if args.expect_suspect not in hay:
            print(f"diagnose.py: expected suspect '{args.expect_suspect}' "
                  f"not found in {hay}", file=sys.stderr)
            return 1
        print(f"expect-suspect: '{args.expect_suspect}' matched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
