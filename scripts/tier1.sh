#!/usr/bin/env bash
# Tier-1 verification: full suite in the default build, then the util + rt
# subset under ASan/UBSan so the recovery paths (spill, checkpoint/restore
# buffer juggling) stay sanitizer-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSR_SANITIZE=ON
cmake --build build-sanitize -j --target util_tests rt_tests
ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/util_tests
ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/rt_tests

echo "tier1: OK"
