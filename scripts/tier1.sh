#!/usr/bin/env bash
# Tier-1 verification. Presets:
#   (no arg)  full suite in the default build, then the asan subset
#   default   full suite in the default build only
#   asan      util + rt subset under ASan/UBSan (recovery paths stay clean)
#   tsan      exec + rt subset under ThreadSanitizer with a parallel,
#             pipelined executor (LSR_EXEC_THREADS=4)
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-all}"

run_default() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
}

run_asan() {
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSR_SANITIZE=ON
  cmake --build build-sanitize -j --target util_tests rt_tests
  ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/util_tests
  ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/rt_tests
}

run_tsan() {
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSR_TSAN=ON
  cmake --build build-tsan -j --target exec_tests rt_tests
  LSR_EXEC_THREADS=4 ./build-tsan/tests/exec_tests
  LSR_EXEC_THREADS=4 ./build-tsan/tests/rt_tests
}

case "$preset" in
  all)
    run_default
    run_asan
    ;;
  default) run_default ;;
  asan) run_asan ;;
  tsan) run_tsan ;;
  *)
    echo "usage: $0 [default|asan|tsan]" >&2
    exit 2
    ;;
esac

echo "tier1 ($preset): OK"
