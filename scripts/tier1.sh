#!/usr/bin/env bash
# Tier-1 verification. Presets:
#   (no arg / all)  full suite in the default build, then the asan subset
#   default   full suite in the default build only
#   asan      util + rt + integrity subset under ASan/UBSan (recovery and
#             corruption paths stay clean)
#   tsan      exec + rt + metrics + integrity subset under ThreadSanitizer
#             with a parallel, pipelined executor (LSR_EXEC_THREADS=4)
#
# Every requested preset runs even when an earlier one fails; the script
# then exits non-zero naming each failed preset. (Previously a failure in
# the first preset of `all` aborted the script before the remaining
# presets ran, and the combined result was whatever the last command
# happened to return.)
#
# Environment passthrough: LSR_* knobs set in the caller's environment reach
# every test run. In particular LSR_PARTITION=rows|nnz|auto selects the
# runtime-wide row-split strategy (DESIGN.md §12) — CI runs a tier-1 leg
# with LSR_PARTITION=nnz — and LSR_EXEC_THREADS sets the executor width for
# the default preset (the asan/tsan presets pin their own thread counts but
# still inherit LSR_PARTITION). LSR_FUSE=off|on|auto likewise selects the
# launch-window fusion mode for every preset — CI runs tier-1 and tsan legs
# with LSR_FUSE=on (DESIGN.md §13). LSR_DIAG=off|on|abort-on-hang turns the
# lsr_diag flight recorder + watchdog on for every test run (DESIGN.md §14)
# — CI runs a tier-1 leg with LSR_DIAG=on to prove recording perturbs
# nothing; the tsan preset exercises the diag rings under ThreadSanitizer.
# LSR_COMM=off|plan|overlap selects the communication planner (DESIGN.md
# §15): cached halo-exchange plans, per-link message coalescing, and (with
# overlap) interior/boundary kernel splitting. CI runs tier-1 and tsan legs
# with LSR_COMM=overlap — results must stay bit-identical to off.
set -uo pipefail
cd "$(dirname "$0")/.."

if [ -n "${LSR_PARTITION:-}" ]; then
  echo "tier1: LSR_PARTITION=${LSR_PARTITION} (passed through to all presets)"
fi
if [ -n "${LSR_FUSE:-}" ]; then
  echo "tier1: LSR_FUSE=${LSR_FUSE} (passed through to all presets)"
fi
if [ -n "${LSR_DIAG:-}" ]; then
  echo "tier1: LSR_DIAG=${LSR_DIAG} (passed through to all presets)"
fi
if [ -n "${LSR_COMM:-}" ]; then
  echo "tier1: LSR_COMM=${LSR_COMM} (passed through to all presets)"
fi

run_default() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
}

run_asan() {
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSR_SANITIZE=ON
  cmake --build build-sanitize -j --target util_tests rt_tests integrity_tests diag_tests
  ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/util_tests
  ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/rt_tests
  ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/integrity_tests
  ASAN_OPTIONS=detect_leaks=0 ./build-sanitize/tests/diag_tests
}

run_tsan() {
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSR_TSAN=ON
  cmake --build build-tsan -j --target exec_tests rt_tests metrics_tests integrity_tests fuse_tests comm_tests diag_tests
  LSR_EXEC_THREADS=4 ./build-tsan/tests/exec_tests
  LSR_EXEC_THREADS=4 ./build-tsan/tests/rt_tests
  LSR_EXEC_THREADS=4 ./build-tsan/tests/metrics_tests
  LSR_EXEC_THREADS=4 ./build-tsan/tests/integrity_tests
  LSR_EXEC_THREADS=4 ./build-tsan/tests/fuse_tests
  # Comm planner under TSan with a live pool: plan derivation and the
  # hit/miss counters run on the submitting thread, but replay interleaves
  # with pool workers — the cache must never be touched from a leaf.
  LSR_EXEC_THREADS=4 LSR_COMM=overlap ./build-tsan/tests/comm_tests
  # Diag rings + watchdog under TSan with a live pool: the seqlock reader
  # and the reset/join paths must be data-race-free (satellite a).
  LSR_EXEC_THREADS=4 LSR_DIAG=on ./build-tsan/tests/diag_tests
}

presets=()
for arg in "$@"; do
  case "$arg" in
    all) presets+=(default asan) ;;
    default|asan|tsan) presets+=("$arg") ;;
    *)
      echo "usage: $0 [all|default|asan|tsan]..." >&2
      exit 2
      ;;
  esac
done
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan)
fi

failed=()
for p in "${presets[@]}"; do
  # Subshell with set -e: a failing step aborts this preset only, and the
  # loop carries on to the remaining presets.
  ( set -e; "run_$p" )
  if [ $? -eq 0 ]; then
    echo "tier1 ($p): OK"
  else
    echo "tier1 ($p): FAILED" >&2
    failed+=("$p")
  fi
done

if [ ${#failed[@]} -gt 0 ]; then
  echo "tier1: FAILED presets: ${failed[*]}" >&2
  exit 1
fi
echo "tier1: OK (${presets[*]})"
